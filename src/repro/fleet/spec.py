"""Tenant and fleet configuration: everything a worker needs, by value.

A :class:`TenantSpec` is deliberately a small frozen bag of scalars --
no topology objects, no feed handles -- so dispatching a tenant to a
worker process pickles a few hundred bytes once, and the worker
rebuilds the full workload (topology, demand, churned epochs, feeds)
deterministically from the seed.  Two runs of the same spec therefore
produce byte-identical verdict digests, which is what lets the
supervisor reschedule a tenant after a worker crash and *assert* the
re-run agrees with every digest the dead worker already shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fleet.admission import AdmissionPolicy

__all__ = ["FleetConfig", "TenantSpec"]

_MODES = ("full", "incremental")
_BACKENDS = ("python", "vector")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant WAN's complete recipe, picklable by value.

    Attributes:
        tenant: Unique tenant id (also the per-tenant store filename).
        nodes: Synthetic Waxman topology size (ignored with
            ``scenario``).
        epochs: Epochs to stream before the tenant's run completes.
        seed: Topology/demand/churn/perturbation seed.
        scenario: Optional catalog scenario id (``"S01"``...); when
            set the tenant replays that scenario's fault-injected
            timeline instead of the synthetic soak fixture -- the
            in-fleet vs standalone differential runs on these.
        mode: Engine epoch path, ``"full"`` or ``"incremental"``.
        backend: Engine backend, ``"python"`` or ``"vector"``.
        churn: Per-link re-measurement probability per epoch
            (synthetic workload only).
        epoch_spacing_s: Virtual seconds between collection instants.
        lateness_s: Assembler lateness window (virtual seconds).
        reorder / drop / duplicate: Feed perturbation probabilities.
        queue_size: Ingest queue bound.
        scatter: Seal epochs as event buffers and fold through the
            cached decoder (the fleet hot path); ``False`` rebuilds
            snapshots in the assembler.
        history: Write validated epochs through to this tenant's
            store file (under the fleet's ``store_dir``).
    """

    tenant: str
    nodes: int = 20
    epochs: int = 10
    seed: int = 0
    scenario: Optional[str] = None
    mode: str = "full"
    backend: str = "python"
    churn: float = 0.10
    epoch_spacing_s: float = 10.0
    lateness_s: float = 2.0
    reorder: float = 0.0
    drop: float = 0.0
    duplicate: float = 0.0
    queue_size: int = 256
    scatter: bool = True
    history: bool = False

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant id must be non-empty")
        if "/" in self.tenant or "\x00" in self.tenant:
            raise ValueError(f"tenant id {self.tenant!r} must not contain '/'")
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {_MODES}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.nodes < 2:
            raise ValueError(f"nodes must be >= 2, got {self.nodes}")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide supervisor tuning.

    Attributes:
        workers: Worker processes in the pool.
        store_dir: Directory for per-tenant history stores (created on
            demand); ``None`` disables history even for tenants that
            request it.
        admission: Quarantine/budget policy
            (:class:`~repro.fleet.admission.AdmissionPolicy`).
        poll_s: Results-channel poll interval -- how often the
            supervisor wakes to check worker liveness while idle.
        deterministic_history: Byte-reproducible per-tenant stores
            (virtual-time anchors, zeroed latencies), so a rescheduled
            tenant's rewritten store matches the original bytes.
        chaos_crash: Test-only fault injection: ``(worker_id, n)``
            hard-kills that worker (``os._exit``, no goodbye) once the
            supervisor has observed ``n`` digests -- the worker-crash
            recovery path's deterministic trigger.  ``None`` in
            production.
    """

    workers: int = 2
    store_dir: Optional[str] = None
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    poll_s: float = 0.2
    deterministic_history: bool = True
    chaos_crash: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.poll_s <= 0.0:
            raise ValueError(f"poll_s must be > 0, got {self.poll_s}")


def tenant_store_path(store_dir: str, tenant: str) -> str:
    """The store-per-tenant layout: ``<dir>/<tenant>.sqlite``."""
    return f"{store_dir}/{tenant}.sqlite"


def synthetic_fleet(
    tenants: int,
    nodes: int = 20,
    epochs: int = 10,
    seed: int = 0,
    mode: str = "full",
    backend: str = "python",
    history: bool = False,
) -> Tuple[TenantSpec, ...]:
    """N soak-shaped tenant specs with decorrelated seeds (E19's fleet)."""
    return tuple(
        TenantSpec(
            tenant=f"t{index:04d}",
            nodes=nodes,
            epochs=epochs,
            seed=seed + index * 1009,
            mode=mode,
            backend=backend,
            history=history,
        )
        for index in range(tenants)
    )
