"""Admission control: budgets, quarantine, and graceful degradation.

The fleet's fairness guard.  Every digest a worker ships is scored
against the :class:`AdmissionPolicy`; a tenant whose feeds *sustain*
misbehaviour -- over-budget update volume, duplicate storms, or
chronically incomplete epochs -- is quarantined so it cannot starve
healthy tenants of worker time.  Quarantine is not forever: after a
cooldown the tenant is readmitted once (bounded by
``max_readmissions``), and a tenant that flaps straight back into
quarantine is evicted for the run.

Everything here is counted in **epochs observed**, never wall time:
cooldowns elapse as the fleet processes digests, so the controller's
decisions are a pure function of the digest sequence and replay
deterministically (hodor-lint D1: no wall clocks in core scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fleet.digest import EpochDigest

__all__ = ["AdmissionController", "AdmissionPolicy", "TenantAdmission"]

#: Tenant admission states.
ADMITTED = "admitted"
QUARANTINED = "quarantined"
EVICTED = "evicted"


@dataclass(frozen=True)
class AdmissionPolicy:
    """What the fleet tolerates before isolating a tenant.

    Attributes:
        max_updates_per_epoch: Per-epoch update-rate budget; ``None``
            disables volume scoring.  An epoch over budget is a
            strike.
        max_duplicates_per_epoch: Duplicate deliveries tolerated per
            epoch before the epoch counts as a strike.
        allow_partial: When ``False``, an incomplete epoch (missing
            routers) is a strike.
        sustain_epochs: Consecutive striking epochs before quarantine
            -- a single bad epoch never quarantines.
        cooldown_epochs: Fleet-observed epochs a quarantined tenant
            waits before readmission eligibility.
        max_readmissions: Times a tenant may re-enter after
            quarantine; the next quarantine evicts it for the run.
        degrade_after_quarantines: Active quarantines at which the
            supervisor broadcasts degraded mode (workers shed
            partial-epoch sealing to protect healthy tenants).
    """

    max_updates_per_epoch: Optional[int] = None
    max_duplicates_per_epoch: int = 50
    allow_partial: bool = True
    sustain_epochs: int = 3
    cooldown_epochs: int = 20
    max_readmissions: int = 1
    degrade_after_quarantines: int = 2

    def __post_init__(self) -> None:
        if self.sustain_epochs < 1:
            raise ValueError(f"sustain_epochs must be >= 1, got {self.sustain_epochs}")
        if self.cooldown_epochs < 0:
            raise ValueError(
                f"cooldown_epochs must be >= 0, got {self.cooldown_epochs}"
            )
        if self.max_readmissions < 0:
            raise ValueError(
                f"max_readmissions must be >= 0, got {self.max_readmissions}"
            )

    def striking(self, digest: EpochDigest) -> bool:
        """Does this epoch count against its tenant?"""
        if (
            self.max_updates_per_epoch is not None
            and digest.updates > self.max_updates_per_epoch
        ):
            return True
        if digest.duplicates > self.max_duplicates_per_epoch:
            return True
        if not self.allow_partial and digest.missing > 0:
            return True
        return False


@dataclass
class TenantAdmission:
    """One tenant's standing with the controller."""

    status: str = ADMITTED
    strikes: int = 0
    quarantines: int = 0
    readmissions: int = 0
    quarantined_at: int = -1  # observation counter value, -1 = never


class AdmissionController:
    """Scores digests and decides quarantine/readmission/eviction.

    The controller is passive bookkeeping: it never talks to workers.
    The supervisor calls :meth:`observe` per digest and acts on the
    returned decision, and polls :meth:`readmittable` to re-dispatch
    cooled-down tenants.  Keeping the side effects in the supervisor
    makes the controller trivially unit-testable with synthetic digest
    sequences (the flapping/cooldown edge cases).
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.observed = 0
        self._tenants: Dict[str, TenantAdmission] = {}

    # ------------------------------------------------------------------

    def _state(self, tenant: str) -> TenantAdmission:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = TenantAdmission()
        return state

    def status(self, tenant: str) -> str:
        return self._state(tenant).status

    def observe(self, digest: EpochDigest) -> Optional[str]:
        """Score one digest; returns ``"quarantine"`` on the epoch that
        crosses the sustain threshold, else ``None``.

        Digests from already-quarantined/evicted tenants (in flight
        when the quarantine landed) are counted as observations but
        never re-scored.
        """
        self.observed += 1
        state = self._state(digest.tenant)
        if state.status != ADMITTED:
            return None
        if self.policy.striking(digest):
            state.strikes += 1
        else:
            state.strikes = 0
        if state.strikes >= self.policy.sustain_epochs:
            state.strikes = 0
            state.quarantines += 1
            if state.readmissions >= self.policy.max_readmissions:
                state.status = EVICTED
            else:
                state.status = QUARANTINED
            state.quarantined_at = self.observed
            return "quarantine"
        return None

    def readmittable(self) -> List[str]:
        """Quarantined tenants whose cooldown has fully elapsed."""
        out = []
        for tenant, state in sorted(self._tenants.items()):
            if state.status != QUARANTINED:
                continue
            if self.observed - state.quarantined_at >= self.policy.cooldown_epochs:
                out.append(tenant)
        return out

    def readmit(self, tenant: str) -> None:
        """Re-admit a cooled-down tenant (the supervisor re-dispatches).

        Raises:
            ValueError: If the tenant is not quarantined or its
                cooldown has not elapsed -- readmitting early would be
                exactly the flapping the cooldown exists to stop.
        """
        state = self._state(tenant)
        if state.status != QUARANTINED:
            raise ValueError(f"tenant {tenant!r} is {state.status}, not quarantined")
        if self.observed - state.quarantined_at < self.policy.cooldown_epochs:
            raise ValueError(
                f"tenant {tenant!r} cooldown not elapsed "
                f"({self.observed - state.quarantined_at}"
                f"/{self.policy.cooldown_epochs} epochs)"
            )
        state.status = ADMITTED
        state.readmissions += 1
        state.strikes = 0

    # ------------------------------------------------------------------

    @property
    def active_quarantines(self) -> int:
        return sum(
            1 for state in self._tenants.values() if state.status == QUARANTINED
        )

    def should_degrade(self) -> bool:
        """Has quarantine pressure crossed the degraded-mode bar?"""
        blocked = sum(
            1
            for state in self._tenants.values()
            if state.status in (QUARANTINED, EVICTED)
        )
        return blocked >= self.policy.degrade_after_quarantines

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-tenant standing (for ``fleet status``)."""
        return {
            tenant: {
                "status": state.status,
                "strikes": state.strikes,
                "quarantines": state.quarantines,
                "readmissions": state.readmissions,
            }
            for tenant, state in sorted(self._tenants.items())
        }
