"""Multi-WAN fleet mode: one service validating many tenant WANs.

The paper argues input validation must run continuously in front of
the TE controller; production operators run not one WAN but a fleet of
them.  :mod:`repro.fleet` is that always-on service: a
:class:`FleetSupervisor` multiplexes independent tenants -- each with
its own topology, feeds, cadence, and engine mode/backend -- across a
pool of worker processes (sidestepping the GIL), with admission
control quarantining tenants whose feeds misbehave before they can
starve healthy ones.

Each worker hosts N tenants' :class:`~repro.stream.ingest.StreamPipeline`
runs end to end (the scatter seal path by default), streams per-epoch
verdict digests back over a results channel, and rolls its tenants'
``MetricsRegistry`` expositions up into one fleet-level registry.
Per-tenant :class:`~repro.history.store.HistoryStore` files live under
a store-per-tenant layout with a cross-tenant rollup query path
(``repro history trends --fleet``).

See ``docs/FLEET.md`` for the architecture, worker protocol, admission
rules, and failure semantics.
"""

from repro.fleet.admission import AdmissionController, AdmissionPolicy
from repro.fleet.digest import EpochDigest, digest_report
from repro.fleet.scenario import TenantRun, run_tenant
from repro.fleet.spec import FleetConfig, TenantSpec
from repro.fleet.supervisor import FleetResult, FleetSupervisor, TenantSummary

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "EpochDigest",
    "FleetConfig",
    "FleetResult",
    "FleetSupervisor",
    "TenantRun",
    "TenantSpec",
    "TenantSummary",
    "digest_report",
    "run_tenant",
]
