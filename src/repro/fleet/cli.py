"""``python -m repro fleet``: run and inspect tenant fleets.

Subcommands:

* ``run``    build a synthetic fleet (or catalog-scenario tenants),
             run it across a worker pool, print per-tenant standings,
             and optionally write the ``fleet.json`` manifest +
             ``fleet.prom`` rollup + per-tenant stores to ``--out``.
* ``status`` read a previous run's ``fleet.json`` manifest back.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

__all__ = ["add_fleet_arguments", "run_fleet"]


def add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="fleet_command", required=True)

    run = sub.add_parser("run", help="run a tenant fleet across a worker pool")
    run.add_argument("--tenants", type=int, default=8, help="synthetic tenant count")
    run.add_argument("--nodes", type=int, default=20, help="nodes per tenant WAN")
    run.add_argument("--epochs", type=int, default=10, help="epochs per tenant")
    run.add_argument("--workers", type=int, default=2, help="worker processes")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="ID",
        help="add one catalog-scenario tenant (repeatable)",
    )
    run.add_argument(
        "--mode", choices=("full", "incremental"), default="full",
        help="engine epoch path for every tenant",
    )
    run.add_argument(
        "--backend", choices=("python", "vector"), default="python",
        help="engine backend for every tenant",
    )
    run.add_argument(
        "--history", action="store_true",
        help="write per-tenant history stores (requires --out)",
    )
    run.add_argument(
        "--out", default="", metavar="DIR",
        help="write fleet.json, fleet.prom, and tenant stores here",
    )
    run.add_argument("--json", action="store_true", help="emit the manifest as JSON")
    run.set_defaults(fleet_func=_cmd_run)

    status = sub.add_parser("status", help="read a fleet run's manifest back")
    status.add_argument("out", help="directory a previous `fleet run --out` wrote")
    status.add_argument("--json", action="store_true", help="emit raw manifest JSON")
    status.set_defaults(fleet_func=_cmd_status)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import format_table
    from repro.fleet.spec import FleetConfig, TenantSpec, synthetic_fleet
    from repro.fleet.supervisor import FleetSupervisor

    if args.history and not args.out:
        print("--history requires --out DIR", file=sys.stderr)
        return 2
    specs: List[TenantSpec] = list(
        synthetic_fleet(
            args.tenants,
            nodes=args.nodes,
            epochs=args.epochs,
            seed=args.seed,
            mode=args.mode,
            backend=args.backend,
            history=args.history,
        )
    )
    for scenario_id in args.scenario:
        specs.append(
            TenantSpec(
                tenant=f"scenario-{scenario_id}",
                scenario=scenario_id,
                epochs=args.epochs,
                seed=args.seed,
                mode=args.mode,
                backend=args.backend,
                history=args.history,
            )
        )
    if not specs:
        print("nothing to run: --tenants 0 and no --scenario", file=sys.stderr)
        return 2
    store_dir = os.path.join(args.out, "stores") if args.history else None
    supervisor = FleetSupervisor(
        specs, FleetConfig(workers=args.workers, store_dir=store_dir)
    )
    result = supervisor.run()
    if args.out:
        manifest = result.write_manifest(args.out)
        print(f"wrote {manifest}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        rows = [
            [
                summary.tenant,
                summary.status,
                f"{summary.epochs_sealed}/{summary.epochs_streamed}",
                summary.updates,
                summary.shed_epochs,
                f"{summary.p99_latency_s() * 1000.0:.2f}",
                summary.reschedules,
            ]
            for summary in result.tenants.values()
        ]
        print(
            format_table(
                ["tenant", "status", "sealed", "updates", "shed", "p99 ms", "resched"],
                rows,
            )
        )
        print()
        statuses = ", ".join(
            f"{status}={count}" for status, count in sorted(result.statuses().items())
        )
        print(
            f"fleet: {len(result.tenants)} tenants on {result.workers} workers "
            f"({statuses}); {result.total_updates} updates, "
            f"{result.crashes} crashes recovered"
        )
    failed = sum(
        1 for s in result.tenants.values() if s.status not in ("done", "quarantined")
    )
    return 1 if failed else 0


def _cmd_status(args: argparse.Namespace) -> int:
    manifest = os.path.join(args.out, "fleet.json")
    try:
        with open(manifest, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        print(f"cannot read {manifest}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    from repro.experiments import format_table

    tenants = payload.get("tenants", {})
    rows = [
        [
            tenant,
            entry.get("status", "?"),
            f"{entry.get('epochs_sealed', 0)}/{entry.get('epochs_streamed', 0)}",
            entry.get("updates", 0),
            f"{float(entry.get('p99_latency_s', 0.0)) * 1000.0:.2f}",
            entry.get("reschedules", 0),
        ]
        for tenant, entry in sorted(tenants.items())
    ]
    print(
        format_table(
            ["tenant", "status", "sealed", "updates", "p99 ms", "resched"], rows
        )
    )
    statuses = payload.get("statuses", {})
    summary = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
    print()
    print(
        f"workers={payload.get('workers')} crashes={payload.get('crashes')} "
        f"updates={payload.get('total_updates')} ({summary})"
    )
    return 0


def run_fleet(args: argparse.Namespace) -> int:
    return args.fleet_func(args)
